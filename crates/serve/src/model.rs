//! The declarative wire model: circuits, binds, probes and sweeps as
//! data.
//!
//! The in-process `ams-sweep` API takes closures for parameter
//! application and probing; closures cannot travel over a socket, so
//! the service describes a job entirely as data and compiles it into
//! those closures on the server side:
//!
//! * [`CircuitSpec`] — a netlist of R/L/C and independent sources,
//!   nodes referenced by name (`"0"` is ground);
//! * [`ParamBind`] — which sweep parameter drives which element value,
//!   absolute or relative to the template nominal;
//! * [`MetricSpec`] — a named probe over a node voltage (last / min /
//!   max over the transient);
//! * [`SweepDecl`] — grid or Monte-Carlo scenario generation, seeds
//!   included (the daemon reproduces the exact `SweepSpec` a local run
//!   would build);
//! * [`JobSpec`] — the whole job: circuit + binds + metrics + sweep +
//!   integration settings.
//!
//! [`CircuitSpec::fingerprint`] is the *topology fingerprint*: a stable
//! hash of the element list (kinds, names, terminals, template
//! values). Jobs with equal fingerprints share one cache entry in
//! `ams-serve`'s [`TopologyCache`](crate::TopologyCache) — same
//! elaborated circuit, same lint verdict, same symbolic LU factor.

use crate::ServeError;
use ams_lint::{ParamRange, SpaceBind, SpaceSpec, SpaceTarget};
use ams_monitor::MonitorSpec;
use ams_net::{Circuit, ElementId, IntegrationMethod, NodeId, Waveform};
use ams_sweep::json::Json;
use ams_sweep::{
    CancelToken, FactorSink, NetlistSweep, ProgressFn, SweepError, SweepReport, SweepSpec,
};
use std::collections::BTreeMap;

/// An independent-source waveform, as data. The [`Waveform::External`]
/// variant is deliberately absent: externally driven inputs belong to
/// co-simulation, not to a self-contained service job.
#[derive(Debug, Clone, PartialEq)]
pub enum WaveSpec {
    /// Constant value.
    Dc(f64),
    /// `offset + ampl·sin(2π·freq·t + phase)`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency in Hz.
        freq: f64,
        /// Phase in radians.
        phase: f64,
    },
    /// Trapezoidal pulse train (SPICE `PULSE` semantics).
    Pulse {
        /// Initial value.
        v1: f64,
        /// Pulsed value.
        v2: f64,
        /// Delay before the first edge, seconds.
        delay: f64,
        /// Rise time, seconds.
        rise: f64,
        /// Fall time, seconds.
        fall: f64,
        /// Width at `v2`, seconds.
        width: f64,
        /// Repetition period, seconds (0 = single pulse).
        period: f64,
    },
}

impl WaveSpec {
    fn to_waveform(&self) -> Waveform {
        match *self {
            WaveSpec::Dc(v) => Waveform::Dc(v),
            WaveSpec::Sine {
                offset,
                ampl,
                freq,
                phase,
            } => Waveform::Sine {
                offset,
                ampl,
                freq,
                phase,
            },
            WaveSpec::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => Waveform::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            },
        }
    }

    fn to_json(&self) -> Json {
        match *self {
            WaveSpec::Dc(v) => Json::Obj(vec![
                ("kind".into(), Json::Str("dc".into())),
                ("value".into(), Json::from_f64(v)),
            ]),
            WaveSpec::Sine {
                offset,
                ampl,
                freq,
                phase,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("sine".into())),
                ("offset".into(), Json::from_f64(offset)),
                ("ampl".into(), Json::from_f64(ampl)),
                ("freq".into(), Json::from_f64(freq)),
                ("phase".into(), Json::from_f64(phase)),
            ]),
            WaveSpec::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => Json::Obj(vec![
                ("kind".into(), Json::Str("pulse".into())),
                ("v1".into(), Json::from_f64(v1)),
                ("v2".into(), Json::from_f64(v2)),
                ("delay".into(), Json::from_f64(delay)),
                ("rise".into(), Json::from_f64(rise)),
                ("fall".into(), Json::from_f64(fall)),
                ("width".into(), Json::from_f64(width)),
                ("period".into(), Json::from_f64(period)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<WaveSpec, ServeError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::invalid("waveform needs a \"kind\""))?;
        let f = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ServeError::invalid(format!("waveform {kind:?} needs {key:?}")))
        };
        match kind {
            "dc" => Ok(WaveSpec::Dc(f("value")?)),
            "sine" => Ok(WaveSpec::Sine {
                offset: f("offset")?,
                ampl: f("ampl")?,
                freq: f("freq")?,
                phase: f("phase")?,
            }),
            "pulse" => Ok(WaveSpec::Pulse {
                v1: f("v1")?,
                v2: f("v2")?,
                delay: f("delay")?,
                rise: f("rise")?,
                fall: f("fall")?,
                width: f("width")?,
                period: f("period")?,
            }),
            other => Err(ServeError::invalid(format!(
                "unknown waveform kind {other:?}"
            ))),
        }
    }

    fn hash_into(&self, h: &mut Fnv) {
        match *self {
            WaveSpec::Dc(v) => {
                h.u64(1);
                h.u64(v.to_bits());
            }
            WaveSpec::Sine {
                offset,
                ampl,
                freq,
                phase,
            } => {
                h.u64(2);
                for v in [offset, ampl, freq, phase] {
                    h.u64(v.to_bits());
                }
            }
            WaveSpec::Pulse {
                v1,
                v2,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                h.u64(3);
                for v in [v1, v2, delay, rise, fall, width, period] {
                    h.u64(v.to_bits());
                }
            }
        }
    }
}

/// What an element is, plus its template (nominal) value.
#[derive(Debug, Clone, PartialEq)]
pub enum ElementKindSpec {
    /// Resistor, ohms.
    Resistor(f64),
    /// Capacitor, farads.
    Capacitor(f64),
    /// Inductor, henries.
    Inductor(f64),
    /// Independent voltage source.
    VoltageSource(WaveSpec),
    /// Independent current source (flows p → n through the source).
    CurrentSource(WaveSpec),
}

impl ElementKindSpec {
    fn tag(&self) -> &'static str {
        match self {
            ElementKindSpec::Resistor(_) => "resistor",
            ElementKindSpec::Capacitor(_) => "capacitor",
            ElementKindSpec::Inductor(_) => "inductor",
            ElementKindSpec::VoltageSource(_) => "vsource",
            ElementKindSpec::CurrentSource(_) => "isource",
        }
    }
}

/// One element of a [`CircuitSpec`]: a name (unique within the spec),
/// two terminal node names, and the kind/value.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementSpec {
    /// Element name, unique within the circuit.
    pub name: String,
    /// Positive terminal node name (`"0"` is ground).
    pub p: String,
    /// Negative terminal node name (`"0"` is ground).
    pub n: String,
    /// Kind and template value.
    pub kind: ElementKindSpec,
}

/// A netlist as data. Node names come into existence by being
/// mentioned; `"0"` (or `"gnd"`) is the ground node.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CircuitSpec {
    /// The element list, in declaration order (order is part of the
    /// fingerprint: MNA unknown numbering follows it).
    pub elements: Vec<ElementSpec>,
}

/// The elaborated form of a [`CircuitSpec`]: the template circuit plus
/// name→id maps for binds and probes. Cheap to clone (the maps are
/// small; the circuit clones element vectors).
#[derive(Debug, Clone)]
pub struct BuiltCircuit {
    /// The template circuit.
    pub circuit: Circuit,
    /// Element name → id.
    pub elements: BTreeMap<String, ElementId>,
    /// Node name → id (including ground under its given names).
    pub nodes: BTreeMap<String, NodeId>,
}

impl CircuitSpec {
    /// The topology fingerprint: a stable FNV-1a hash over the ordered
    /// element list — kinds, names, terminal names and template values
    /// (bit patterns). Equal fingerprints ⇒ identical elaborated
    /// template ⇒ one shared cache entry.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for e in &self.elements {
            h.bytes(e.kind.tag().as_bytes());
            h.bytes(e.name.as_bytes());
            h.bytes(e.p.as_bytes());
            h.bytes(e.n.as_bytes());
            match &e.kind {
                ElementKindSpec::Resistor(v)
                | ElementKindSpec::Capacitor(v)
                | ElementKindSpec::Inductor(v) => h.u64(v.to_bits()),
                ElementKindSpec::VoltageSource(w) | ElementKindSpec::CurrentSource(w) => {
                    w.hash_into(&mut h);
                }
            }
        }
        h.finish()
    }

    /// Elaborates the spec into a [`Circuit`] plus name→id maps.
    ///
    /// # Errors
    ///
    /// Duplicate element names, empty specs, or element-level
    /// rejections from [`Circuit`] (non-positive R/L/C values, …).
    pub fn build(&self) -> Result<BuiltCircuit, ServeError> {
        if self.elements.is_empty() {
            return Err(ServeError::invalid("circuit has no elements"));
        }
        let mut ckt = Circuit::new();
        let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
        let mut elements: BTreeMap<String, ElementId> = BTreeMap::new();
        let mut node = |ckt: &mut Circuit, name: &str| -> NodeId {
            if name == "0" || name == "gnd" {
                return Circuit::GROUND;
            }
            *nodes
                .entry(name.to_string())
                .or_insert_with(|| ckt.node(name))
        };
        for e in &self.elements {
            let p = node(&mut ckt, &e.p);
            let n = node(&mut ckt, &e.n);
            let fail = |err: ams_net::NetError| {
                ServeError::invalid(format!("element {:?}: {err}", e.name))
            };
            let id = match &e.kind {
                ElementKindSpec::Resistor(v) => ckt.resistor(&e.name, p, n, *v).map_err(fail)?,
                ElementKindSpec::Capacitor(v) => ckt.capacitor(&e.name, p, n, *v).map_err(fail)?,
                ElementKindSpec::Inductor(v) => ckt.inductor(&e.name, p, n, *v).map_err(fail)?,
                ElementKindSpec::VoltageSource(w) => ckt
                    .voltage_source_wave(&e.name, p, n, w.to_waveform())
                    .map_err(fail)?,
                ElementKindSpec::CurrentSource(w) => ckt
                    .current_source_wave(&e.name, p, n, w.to_waveform())
                    .map_err(fail)?,
            };
            if elements.insert(e.name.clone(), id).is_some() {
                return Err(ServeError::invalid(format!(
                    "duplicate element name {:?}",
                    e.name
                )));
            }
        }
        nodes.insert("0".into(), Circuit::GROUND);
        Ok(BuiltCircuit {
            circuit: ckt,
            elements,
            nodes,
        })
    }

    fn to_json(&self) -> Json {
        Json::Arr(
            self.elements
                .iter()
                .map(|e| {
                    let mut fields = vec![
                        ("kind".into(), Json::Str(e.kind.tag().into())),
                        ("name".into(), Json::Str(e.name.clone())),
                        ("p".into(), Json::Str(e.p.clone())),
                        ("n".into(), Json::Str(e.n.clone())),
                    ];
                    match &e.kind {
                        ElementKindSpec::Resistor(v)
                        | ElementKindSpec::Capacitor(v)
                        | ElementKindSpec::Inductor(v) => {
                            fields.push(("value".into(), Json::from_f64(*v)));
                        }
                        ElementKindSpec::VoltageSource(w) | ElementKindSpec::CurrentSource(w) => {
                            fields.push(("wave".into(), w.to_json()));
                        }
                    }
                    Json::Obj(fields)
                })
                .collect(),
        )
    }

    fn from_json(v: &Json) -> Result<CircuitSpec, ServeError> {
        let arr = v
            .as_arr()
            .ok_or_else(|| ServeError::invalid("circuit must be an element array"))?;
        let mut elements = Vec::with_capacity(arr.len());
        for e in arr {
            let s = |key: &str| {
                e.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| ServeError::invalid(format!("element needs string {key:?}")))
            };
            let kind_tag = s("kind")?;
            let value = || {
                e.get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| ServeError::invalid(format!("{kind_tag} needs a \"value\"")))
            };
            let wave =
                || {
                    WaveSpec::from_json(e.get("wave").ok_or_else(|| {
                        ServeError::invalid(format!("{kind_tag} needs a \"wave\""))
                    })?)
                };
            let kind = match kind_tag.as_str() {
                "resistor" => ElementKindSpec::Resistor(value()?),
                "capacitor" => ElementKindSpec::Capacitor(value()?),
                "inductor" => ElementKindSpec::Inductor(value()?),
                "vsource" => ElementKindSpec::VoltageSource(wave()?),
                "isource" => ElementKindSpec::CurrentSource(wave()?),
                other => {
                    return Err(ServeError::invalid(format!(
                        "unknown element kind {other:?}"
                    )))
                }
            };
            elements.push(ElementSpec {
                name: s("name")?,
                p: s("p")?,
                n: s("n")?,
                kind,
            });
        }
        Ok(CircuitSpec { elements })
    }
}

/// Which element value a sweep parameter drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindTarget {
    /// `set_resistance` (ohms).
    Resistance,
    /// `set_capacitance` (farads).
    Capacitance,
    /// `set_inductance` (henries).
    Inductance,
}

impl BindTarget {
    fn tag(self) -> &'static str {
        match self {
            BindTarget::Resistance => "resistance",
            BindTarget::Capacitance => "capacitance",
            BindTarget::Inductance => "inductance",
        }
    }
}

/// Maps one sweep parameter to one element value. With `relative`, the
/// parameter is a fractional deviation applied to the element's
/// template value (`v = nominal · (1 + p)` — Monte-Carlo tolerance
/// style); otherwise the parameter *is* the value.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamBind {
    /// Sweep parameter name (must exist in the [`SweepDecl`]).
    pub param: String,
    /// Element name (must exist in the [`CircuitSpec`]).
    pub element: String,
    /// Which value mutator to apply.
    pub target: BindTarget,
    /// Relative (tolerance) vs absolute application.
    pub relative: bool,
}

/// How a probed node voltage folds into a scalar metric over the
/// transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// Value at the final accepted step.
    Last,
    /// Minimum over all accepted steps.
    Min,
    /// Maximum over all accepted steps.
    Max,
}

impl ProbeKind {
    fn tag(self) -> &'static str {
        match self {
            ProbeKind::Last => "last",
            ProbeKind::Min => "min",
            ProbeKind::Max => "max",
        }
    }
}

/// A named scalar metric probing one node's voltage.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSpec {
    /// Metric name in the report.
    pub name: String,
    /// Probed node name.
    pub node: String,
    /// Folding rule.
    pub probe: ProbeKind,
}

/// Scenario generation, as data. Reproduces exactly the
/// [`SweepSpec`] constructors a local caller would use — including the
/// seed derivation, so a daemon-run job and a local run of the same
/// declaration see identical scenarios.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepDecl {
    /// Full cross-product of per-parameter value lists.
    Grid {
        /// `(parameter, values)` axes.
        params: Vec<(String, Vec<f64>)>,
        /// Base seed for per-scenario PRNG streams.
        seed: u64,
    },
    /// `n` Monte-Carlo samples, uniform per-parameter ranges.
    MonteCarlo {
        /// `(parameter, lo, hi)` ranges.
        params: Vec<(String, f64, f64)>,
        /// Sample count.
        n: usize,
        /// Base seed.
        seed: u64,
    },
}

impl SweepDecl {
    /// Number of scenarios this declaration expands to.
    pub fn scenario_count(&self) -> usize {
        match self {
            SweepDecl::Grid { params, .. } => params.iter().map(|(_, v)| v.len().max(1)).product(),
            SweepDecl::MonteCarlo { n, .. } => *n,
        }
    }

    /// Expands into the concrete [`SweepSpec`].
    ///
    /// # Errors
    ///
    /// The underlying constructor's validation (empty axes, bad
    /// ranges), mapped to [`ServeError::Invalid`].
    pub fn to_spec(&self) -> Result<SweepSpec, ServeError> {
        let spec = match self {
            SweepDecl::Grid { params, seed } => {
                let axes: Vec<(&str, &[f64])> = params
                    .iter()
                    .map(|(n, v)| (n.as_str(), v.as_slice()))
                    .collect();
                SweepSpec::grid(&axes, *seed)
            }
            SweepDecl::MonteCarlo { params, n, seed } => {
                let ranges: Vec<(&str, f64, f64)> = params
                    .iter()
                    .map(|(name, lo, hi)| (name.as_str(), *lo, *hi))
                    .collect();
                SweepSpec::monte_carlo(&ranges, *n, *seed)
            }
        };
        spec.map_err(|e| ServeError::invalid(e.to_string()))
    }

    fn to_json(&self) -> Json {
        match self {
            SweepDecl::Grid { params, seed } => Json::Obj(vec![
                ("kind".into(), Json::Str("grid".into())),
                (
                    "params".into(),
                    Json::Arr(
                        params
                            .iter()
                            .map(|(n, vals)| {
                                Json::Obj(vec![
                                    ("name".into(), Json::Str(n.clone())),
                                    (
                                        "values".into(),
                                        Json::Arr(
                                            vals.iter().map(|v| Json::from_f64(*v)).collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("seed".into(), Json::from_u64(*seed)),
            ]),
            SweepDecl::MonteCarlo { params, n, seed } => Json::Obj(vec![
                ("kind".into(), Json::Str("monte_carlo".into())),
                (
                    "params".into(),
                    Json::Arr(
                        params
                            .iter()
                            .map(|(name, lo, hi)| {
                                Json::Obj(vec![
                                    ("name".into(), Json::Str(name.clone())),
                                    ("lo".into(), Json::from_f64(*lo)),
                                    ("hi".into(), Json::from_f64(*hi)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("n".into(), Json::from_u64(*n as u64)),
                ("seed".into(), Json::from_u64(*seed)),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<SweepDecl, ServeError> {
        let kind = v
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::invalid("sweep needs a \"kind\""))?;
        let seed = v
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| ServeError::invalid("sweep needs a \"seed\""))?;
        let params = v
            .get("params")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::invalid("sweep needs a \"params\" array"))?;
        match kind {
            "grid" => {
                let mut axes = Vec::with_capacity(params.len());
                for p in params {
                    let name = p
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ServeError::invalid("grid param needs a \"name\""))?;
                    let values = p
                        .get("values")
                        .and_then(Json::as_arr)
                        .ok_or_else(|| ServeError::invalid("grid param needs \"values\""))?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| ServeError::invalid("grid value must be a number"))
                        })
                        .collect::<Result<Vec<f64>, ServeError>>()?;
                    axes.push((name.to_string(), values));
                }
                Ok(SweepDecl::Grid { params: axes, seed })
            }
            "monte_carlo" => {
                let n = v
                    .get("n")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ServeError::invalid("monte_carlo sweep needs \"n\""))?;
                let mut ranges = Vec::with_capacity(params.len());
                for p in params {
                    let name = p
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| ServeError::invalid("mc param needs a \"name\""))?;
                    let lo = p
                        .get("lo")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| ServeError::invalid("mc param needs \"lo\""))?;
                    let hi = p
                        .get("hi")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| ServeError::invalid("mc param needs \"hi\""))?;
                    ranges.push((name.to_string(), lo, hi));
                }
                Ok(SweepDecl::MonteCarlo {
                    params: ranges,
                    n,
                    seed,
                })
            }
            other => Err(ServeError::invalid(format!("unknown sweep kind {other:?}"))),
        }
    }
}

/// A complete service job: what to simulate, how to vary it, what to
/// measure.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// The netlist.
    pub circuit: CircuitSpec,
    /// Parameter → element-value binds.
    pub binds: Vec<ParamBind>,
    /// Probed metrics (at least one).
    pub metrics: Vec<MetricSpec>,
    /// Scenario generation.
    pub sweep: SweepDecl,
    /// Optional temporal-assertion monitors, as an `ams-monitor` spec
    /// string (see [`MonitorSpec::parse`]); channels name circuit
    /// nodes. Parsed and validated at submit, folded into the job
    /// fingerprint, and evaluated during every scenario — per-scenario
    /// verdicts land in the report and stream through `poll`.
    pub monitors: Option<String>,
    /// Transient horizon, seconds.
    pub t_end: f64,
    /// Fixed timestep, seconds.
    pub h: f64,
    /// Trapezoidal (true) vs backward-Euler integration.
    pub trapezoidal: bool,
    /// Requested worker shards (the scheduler clamps this to the
    /// tenant's quota and the machine).
    pub workers: usize,
}

/// Everything needed to actually run a [`JobSpec`]: the elaborated
/// template plus binds/probes resolved to ids. Obtained via
/// [`JobSpec::prepare`] (cold) or assembled from a cache entry (warm).
#[derive(Debug, Clone)]
pub struct PreparedJob {
    built: BuiltCircuit,
    /// `(element id, target, nominal, relative, param name)` per bind.
    binds: Vec<(ElementId, BindTarget, f64, bool, String)>,
    /// `(metric name, node id, probe)` per metric.
    probes: Vec<(String, NodeId, ProbeKind)>,
    /// Parsed monitor declaration (channels resolve inside the sweep).
    monitors: Option<MonitorSpec>,
    method: IntegrationMethod,
    t_end: f64,
    h: f64,
}

/// Knobs for [`PreparedJob::run`] that only the service layer sets.
#[derive(Default)]
pub struct RunOpts {
    /// Skip the lint gate (the caller holds a cached verdict).
    pub pre_linted: bool,
    /// Warm symbolic factor to adopt for every scenario.
    pub symbolic_hint: Option<ams_net::SymbolicFactor>,
    /// Cooperative cancellation, checked at scenario boundaries.
    pub cancel: Option<CancelToken>,
    /// Streaming per-scenario delivery.
    pub progress: Option<ProgressFn>,
    /// Receives scenario 0's exported factor on cold runs.
    pub factor_sink: Option<FactorSink>,
}

impl std::fmt::Debug for RunOpts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOpts")
            .field("pre_linted", &self.pre_linted)
            .field("symbolic_hint", &self.symbolic_hint.is_some())
            .field("cancel", &self.cancel.is_some())
            .field("progress", &self.progress.is_some())
            .field("factor_sink", &self.factor_sink.is_some())
            .finish()
    }
}

impl JobSpec {
    /// Scenario count of the job's sweep declaration.
    pub fn scenario_count(&self) -> usize {
        self.sweep.scenario_count()
    }

    /// The job's identity fingerprint: the topology fingerprint (see
    /// [`CircuitSpec::fingerprint`]) with the monitor spec text folded
    /// on top when present. An unmonitored job's fingerprint equals its
    /// topology fingerprint, so pre-monitor identities are unchanged;
    /// cache keying stays on [`CircuitSpec::fingerprint`] alone
    /// (monitors change what a job *checks*, not what it elaborates).
    pub fn fingerprint(&self) -> u64 {
        match &self.monitors {
            None => self.circuit.fingerprint(),
            Some(m) => {
                let mut h = Fnv::new();
                h.u64(self.circuit.fingerprint());
                h.bytes(m.as_bytes());
                h.finish()
            }
        }
    }

    /// Parses the job's monitor declaration, when present. An empty
    /// spec string counts as "no monitors".
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] with the parser's message for a
    /// malformed spec.
    pub fn monitor_spec(&self) -> Result<Option<MonitorSpec>, ServeError> {
        match &self.monitors {
            None => Ok(None),
            Some(text) => {
                let spec = MonitorSpec::parse(text)
                    .map_err(|e| ServeError::invalid(format!("monitor spec: {e}")))?;
                Ok((!spec.is_empty()).then_some(spec))
            }
        }
    }

    /// The job's sweep-space specification: the parameter *box* the
    /// sweep declaration spans (grid axes collapse to `[min, max]`
    /// hulls, Monte-Carlo ranges are taken verbatim) plus the binds in
    /// `ams-lint::space` form. This is what admission proves properties
    /// over before the job touches any queue — see
    /// [`ServeHandle::submit`](crate::ServeHandle::submit).
    ///
    /// A bind naming an element the circuit spec does not declare (or
    /// one without a sweepable value) is carried through with a zero
    /// nominal: the space pass classifies it `SPC004` rather than this
    /// method failing, so admission and library verdicts stay aligned.
    pub fn space_spec(&self) -> SpaceSpec {
        let ranges = match &self.sweep {
            SweepDecl::Grid { params, .. } => params
                .iter()
                .map(|(name, values)| {
                    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
                    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    ParamRange::new(name.clone(), lo, hi)
                })
                .collect(),
            SweepDecl::MonteCarlo { params, .. } => params
                .iter()
                .map(|(name, lo, hi)| ParamRange::new(name.clone(), *lo, *hi))
                .collect(),
        };
        let nominal = |name: &str| -> Option<f64> {
            self.circuit.elements.iter().find_map(|e| {
                if e.name != name {
                    return None;
                }
                match &e.kind {
                    ElementKindSpec::Resistor(v)
                    | ElementKindSpec::Capacitor(v)
                    | ElementKindSpec::Inductor(v) => Some(*v),
                    _ => None,
                }
            })
        };
        let binds = self
            .binds
            .iter()
            .map(|b| SpaceBind {
                param: b.param.clone(),
                element: b.element.clone(),
                target: match b.target {
                    BindTarget::Resistance => SpaceTarget::Resistance,
                    BindTarget::Capacitance => SpaceTarget::Capacitance,
                    BindTarget::Inductance => SpaceTarget::Inductance,
                },
                relative: b.relative,
                nominal: nominal(&b.element).unwrap_or(0.0),
            })
            .collect();
        SpaceSpec::new(ranges, binds).requested_h(self.h)
    }

    /// Elaborates and resolves the job against a freshly built circuit.
    ///
    /// # Errors
    ///
    /// Build failures, unknown element/node names in binds and metrics,
    /// missing metrics, or non-positive integration settings.
    pub fn prepare(&self) -> Result<PreparedJob, ServeError> {
        self.prepare_with(self.circuit.build()?)
    }

    /// [`JobSpec::prepare`] against an already elaborated template —
    /// the warm path, where the build came out of the topology cache.
    ///
    /// # Errors
    ///
    /// Same resolution failures as [`JobSpec::prepare`].
    pub fn prepare_with(&self, built: BuiltCircuit) -> Result<PreparedJob, ServeError> {
        if self.metrics.is_empty() {
            return Err(ServeError::invalid("job needs at least one metric"));
        }
        if !(self.t_end > 0.0 && self.h > 0.0 && self.t_end.is_finite() && self.h.is_finite()) {
            return Err(ServeError::invalid(
                "t_end and h must be positive finite seconds",
            ));
        }
        let nominal = |name: &str| -> Option<f64> {
            self.circuit.elements.iter().find_map(|e| {
                if e.name != name {
                    return None;
                }
                match &e.kind {
                    ElementKindSpec::Resistor(v)
                    | ElementKindSpec::Capacitor(v)
                    | ElementKindSpec::Inductor(v) => Some(*v),
                    _ => None,
                }
            })
        };
        let mut binds = Vec::with_capacity(self.binds.len());
        for b in &self.binds {
            let id = *built.elements.get(&b.element).ok_or_else(|| {
                ServeError::invalid(format!("bind references unknown element {:?}", b.element))
            })?;
            let nom = nominal(&b.element).ok_or_else(|| {
                ServeError::invalid(format!(
                    "bind target {:?} has no sweepable value",
                    b.element
                ))
            })?;
            binds.push((id, b.target, nom, b.relative, b.param.clone()));
        }
        let mut probes = Vec::with_capacity(self.metrics.len());
        for m in &self.metrics {
            let node = *built.nodes.get(&m.node).ok_or_else(|| {
                ServeError::invalid(format!(
                    "metric {:?} probes unknown node {:?}",
                    m.name, m.node
                ))
            })?;
            probes.push((m.name.clone(), node, m.probe));
        }
        let monitors = self.monitor_spec()?;
        if let Some(spec) = &monitors {
            for ch in spec.props.iter().map(|p| p.channel.as_str()) {
                if ch != "0" && ch != "gnd" && !built.nodes.contains_key(ch) {
                    return Err(ServeError::invalid(format!(
                        "monitor channel {ch:?} names no circuit node"
                    )));
                }
            }
        }
        Ok(PreparedJob {
            built,
            binds,
            probes,
            monitors,
            method: if self.trapezoidal {
                IntegrationMethod::Trapezoidal
            } else {
                IntegrationMethod::BackwardEuler
            },
            t_end: self.t_end,
            h: self.h,
        })
    }

    /// Cold, cache-free execution — exactly what a local caller without
    /// the service would do. The reference point for warm-vs-cold
    /// fingerprint parity.
    ///
    /// # Errors
    ///
    /// Preparation failures and [`ServeError::Sweep`] run failures.
    pub fn direct_run(&self, workers: usize) -> Result<SweepReport, ServeError> {
        let spec = self.sweep.to_spec()?;
        self.prepare()?.run(&spec, workers, RunOpts::default())
    }

    /// Serializes the job to its wire JSON. The `monitors` field is
    /// emitted only when present, so unmonitored jobs serialize exactly
    /// as they did before monitors existed.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("circuit".into(), self.circuit.to_json()),
            (
                "binds".into(),
                Json::Arr(
                    self.binds
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("param".into(), Json::Str(b.param.clone())),
                                ("element".into(), Json::Str(b.element.clone())),
                                ("target".into(), Json::Str(b.target.tag().into())),
                                ("relative".into(), Json::Bool(b.relative)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "metrics".into(),
                Json::Arr(
                    self.metrics
                        .iter()
                        .map(|m| {
                            Json::Obj(vec![
                                ("name".into(), Json::Str(m.name.clone())),
                                ("node".into(), Json::Str(m.node.clone())),
                                ("probe".into(), Json::Str(m.probe.tag().into())),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("sweep".into(), self.sweep.to_json()),
            ("t_end".into(), Json::from_f64(self.t_end)),
            ("h".into(), Json::from_f64(self.h)),
            ("trapezoidal".into(), Json::Bool(self.trapezoidal)),
            ("workers".into(), Json::from_u64(self.workers as u64)),
        ];
        if let Some(m) = &self.monitors {
            fields.push(("monitors".into(), Json::Str(m.clone())));
        }
        Json::Obj(fields)
    }

    /// Parses a job from its wire JSON.
    ///
    /// # Errors
    ///
    /// [`ServeError::Invalid`] naming the malformed field.
    pub fn from_json(v: &Json) -> Result<JobSpec, ServeError> {
        let circuit = CircuitSpec::from_json(
            v.get("circuit")
                .ok_or_else(|| ServeError::invalid("job needs a \"circuit\""))?,
        )?;
        let mut binds = Vec::new();
        if let Some(arr) = v.get("binds").and_then(Json::as_arr) {
            for b in arr {
                let s = |key: &str| {
                    b.get(key)
                        .and_then(Json::as_str)
                        .ok_or_else(|| ServeError::invalid(format!("bind needs string {key:?}")))
                };
                let target = match s("target")? {
                    "resistance" => BindTarget::Resistance,
                    "capacitance" => BindTarget::Capacitance,
                    "inductance" => BindTarget::Inductance,
                    other => {
                        return Err(ServeError::invalid(format!(
                            "unknown bind target {other:?}"
                        )))
                    }
                };
                binds.push(ParamBind {
                    param: s("param")?.to_string(),
                    element: s("element")?.to_string(),
                    target,
                    relative: b.get("relative").and_then(Json::as_bool).unwrap_or(false),
                });
            }
        }
        let metrics_json = v
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or_else(|| ServeError::invalid("job needs a \"metrics\" array"))?;
        let mut metrics = Vec::with_capacity(metrics_json.len());
        for m in metrics_json {
            let s = |key: &str| {
                m.get(key)
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::invalid(format!("metric needs string {key:?}")))
            };
            let probe = match s("probe")? {
                "last" => ProbeKind::Last,
                "min" => ProbeKind::Min,
                "max" => ProbeKind::Max,
                other => return Err(ServeError::invalid(format!("unknown probe {other:?}"))),
            };
            metrics.push(MetricSpec {
                name: s("name")?.to_string(),
                node: s("node")?.to_string(),
                probe,
            });
        }
        let f = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| ServeError::invalid(format!("job needs number {key:?}")))
        };
        Ok(JobSpec {
            circuit,
            binds,
            metrics,
            sweep: SweepDecl::from_json(
                v.get("sweep")
                    .ok_or_else(|| ServeError::invalid("job needs a \"sweep\""))?,
            )?,
            monitors: v.get("monitors").and_then(Json::as_str).map(str::to_string),
            t_end: f("t_end")?,
            h: f("h")?,
            trapezoidal: v.get("trapezoidal").and_then(Json::as_bool).unwrap_or(true),
            workers: v.get("workers").and_then(Json::as_usize).unwrap_or(1),
        })
    }

    /// A ready-made Monte-Carlo job over the four-stage RC ladder the
    /// `monte_carlo_filter` example uses: ±10% tolerance on every R and
    /// C, probing the final-node settle voltage and its overshoot. Used
    /// by doctests, the daemon smoke tests, and the client example.
    pub fn demo_rc(n: usize, seed: u64) -> JobSpec {
        let mut elements = vec![ElementSpec {
            name: "Vin".into(),
            p: "n0".into(),
            n: "0".into(),
            kind: ElementKindSpec::VoltageSource(WaveSpec::Pulse {
                v1: 0.0,
                v2: 1.0,
                delay: 1e-6,
                rise: 1e-7,
                fall: 1e-7,
                width: 40e-6,
                period: 0.0,
            }),
        }];
        let mut binds = Vec::new();
        for k in 0..4 {
            elements.push(ElementSpec {
                name: format!("R{k}"),
                p: format!("n{k}"),
                n: format!("n{}", k + 1),
                kind: ElementKindSpec::Resistor(1.6e3),
            });
            elements.push(ElementSpec {
                name: format!("C{k}"),
                p: format!("n{}", k + 1),
                n: "0".into(),
                kind: ElementKindSpec::Capacitor(10e-9),
            });
            binds.push(ParamBind {
                param: "dr".into(),
                element: format!("R{k}"),
                target: BindTarget::Resistance,
                relative: true,
            });
            binds.push(ParamBind {
                param: "dc".into(),
                element: format!("C{k}"),
                target: BindTarget::Capacitance,
                relative: true,
            });
        }
        JobSpec {
            circuit: CircuitSpec { elements },
            binds,
            metrics: vec![
                MetricSpec {
                    name: "v_settle".into(),
                    node: "n4".into(),
                    probe: ProbeKind::Last,
                },
                MetricSpec {
                    name: "v_peak".into(),
                    node: "n4".into(),
                    probe: ProbeKind::Max,
                },
            ],
            sweep: SweepDecl::MonteCarlo {
                params: vec![("dr".into(), -0.1, 0.1), ("dc".into(), -0.1, 0.1)],
                n,
                seed,
            },
            monitors: None,
            t_end: 50e-6,
            h: 50e-9,
            trapezoidal: true,
            workers: 2,
        }
    }

    /// [`JobSpec::demo_rc`] with three temporal assertions on the
    /// output node: a passivity envelope (an RC low-pass of a 0→1 V
    /// pulse can never leave `[0, 1]`, so this property passes in every
    /// scenario), an overshoot bound at the same ceiling, and a
    /// settling-time requirement whose verdict depends on the sampled
    /// component tolerances — the yield-style property sweeps exist to
    /// measure.
    pub fn demo_rc_monitored(n: usize, seed: u64) -> JobSpec {
        let mut job = JobSpec::demo_rc(n, seed);
        job.monitors = Some(
            "bounded:envelope(lo=-0.05,hi=1.05)@n4;\
             over:overshoot(max=1.05)@n4;\
             settled:settle(lo=0.93,hi=1.07,by=4.6e-5)@n4"
                .into(),
        );
        job
    }
}

impl PreparedJob {
    /// The elaborated template and maps (for caching).
    pub fn built(&self) -> &BuiltCircuit {
        &self.built
    }

    /// Runs the job's sweep with the service-layer options, compiling
    /// the declarative binds and probes into the `ams-sweep` closures.
    ///
    /// # Errors
    ///
    /// [`ServeError::Sweep`] / [`ServeError::Cancelled`] from the
    /// batch engine, [`ServeError::Invalid`] for an unknown parameter
    /// name surfacing at apply time.
    pub fn run(
        &self,
        spec: &SweepSpec,
        workers: usize,
        opts: RunOpts,
    ) -> Result<SweepReport, ServeError> {
        for (_, _, _, _, param) in &self.binds {
            if !spec.names().iter().any(|n| n == param) {
                return Err(ServeError::invalid(format!(
                    "bind references unknown sweep parameter {param:?}"
                )));
            }
        }
        // The service always runs the sparse backend, regardless of
        // circuit size: the topology cache's symbolic-LU reuse (and its
        // `serve.lu.*` accounting) only exists on the sparse path, and
        // warm/cold parity requires every run to pick the same backend.
        let mut sweep = NetlistSweep::new(self.built.circuit.clone(), self.method)
            .fixed_step(self.t_end, self.h)
            .context("serve")
            .backend(ams_net::SolverBackend::Sparse)
            .pre_linted(opts.pre_linted);
        if let Some(hint) = opts.symbolic_hint {
            sweep = sweep.symbolic_hint(hint);
        }
        if let Some(token) = opts.cancel {
            sweep = sweep.cancel_token(token);
        }
        if let Some(progress) = opts.progress {
            sweep = sweep.on_scenario(progress);
        }
        if let Some(sink) = opts.factor_sink {
            sweep = sweep.factor_sink(sink);
        }
        if let Some(monitors) = &self.monitors {
            sweep = sweep.monitors(monitors.clone());
        }
        let metric_names: Vec<&str> = self.probes.iter().map(|(n, _, _)| n.as_str()).collect();
        let report = sweep.run(
            spec,
            workers.max(1),
            &metric_names,
            |ckt, sc| {
                for (id, target, nominal, relative, param) in &self.binds {
                    let p = sc.value(param);
                    let v = if *relative { nominal * (1.0 + p) } else { p };
                    match target {
                        BindTarget::Resistance => ckt.set_resistance(*id, v)?,
                        BindTarget::Capacitance => ckt.set_capacitance(*id, v)?,
                        BindTarget::Inductance => ckt.set_inductance(*id, v)?,
                    }
                }
                Ok(())
            },
            |tr, m| {
                for (i, (_, node, probe)) in self.probes.iter().enumerate() {
                    let v = tr.voltage(*node);
                    m[i] = match probe {
                        ProbeKind::Last => v,
                        ProbeKind::Min => {
                            if m[i].is_nan() {
                                v
                            } else {
                                m[i].min(v)
                            }
                        }
                        ProbeKind::Max => {
                            if m[i].is_nan() {
                                v
                            } else {
                                m[i].max(v)
                            }
                        }
                    };
                }
            },
        );
        report.map_err(|e: SweepError| e.into())
    }
}

/// FNV-1a, the same construction `ams-sweep` uses for report
/// fingerprints — small, stable, dependency-free.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        // Length prefix keeps adjacent fields from gluing together.
        for b in (bs.len() as u64).to_le_bytes() {
            self.byte(b);
        }
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_json() {
        let job = JobSpec::demo_rc(16, 0xF1);
        let wire = job.to_json().render();
        let back = JobSpec::from_json(&ams_sweep::json::parse(&wire).unwrap()).unwrap();
        assert_eq!(job, back);
        // The fingerprint survives the wire.
        assert_eq!(job.fingerprint(), back.fingerprint());
        // A monitored job round-trips its property spec too.
        let monitored = JobSpec::demo_rc_monitored(16, 0xF1);
        let wire = monitored.to_json().render();
        let back = JobSpec::from_json(&ams_sweep::json::parse(&wire).unwrap()).unwrap();
        assert_eq!(monitored, back);
        assert_eq!(monitored.fingerprint(), back.fingerprint());
    }

    #[test]
    fn monitors_fold_into_job_identity_but_not_topology() {
        let plain = JobSpec::demo_rc(8, 1);
        let monitored = JobSpec::demo_rc_monitored(8, 1);
        // Same circuit, so the same topology-cache entry …
        assert_eq!(plain.circuit.fingerprint(), monitored.circuit.fingerprint());
        // … but distinct job identities, and distinct again for a
        // different property list.
        assert_ne!(plain.fingerprint(), monitored.fingerprint());
        let mut other = monitored.clone();
        other.monitors = Some("only:finite()@n4".into());
        assert_ne!(other.fingerprint(), monitored.fingerprint());
        // Unmonitored jobs keep the historical identity.
        assert_eq!(plain.fingerprint(), plain.circuit.fingerprint());
    }

    #[test]
    fn monitored_direct_run_yields_verdicts() {
        let job = JobSpec::demo_rc_monitored(6, 0xAB);
        let one = job.direct_run(1).unwrap();
        let four = job.direct_run(4).unwrap();
        assert_eq!(one.fingerprint(), four.fingerprint());
        assert_eq!(one.monitor_names.len(), 3);
        for s in &one.scenarios {
            assert_eq!(s.verdicts.len(), 3);
        }
        // The envelope and overshoot properties hold on every RC
        // scenario of a unit pulse.
        let summary = one.monitor_summary();
        assert_eq!(summary[0].pass, 6, "envelope: {:?}", summary[0]);
        assert_eq!(summary[1].pass, 6, "overshoot: {:?}", summary[1]);
    }

    #[test]
    fn fingerprint_tracks_topology_and_template_values() {
        let a = JobSpec::demo_rc(8, 1);
        let mut b = JobSpec::demo_rc(8, 2);
        // Sweep size and seed are not part of the topology identity.
        assert_eq!(a.fingerprint(), b.fingerprint());
        // A template value is.
        if let ElementKindSpec::Resistor(v) = &mut b.circuit.elements[1].kind {
            *v *= 2.0;
        } else {
            panic!("element 1 should be R0");
        }
        assert_ne!(a.fingerprint(), b.fingerprint());
        // So is connectivity.
        let mut c = JobSpec::demo_rc(8, 1);
        c.circuit.elements[2].n = "n3".into();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn build_rejects_bad_specs() {
        assert!(CircuitSpec::default().build().is_err());
        let dup = CircuitSpec {
            elements: vec![
                ElementSpec {
                    name: "R".into(),
                    p: "a".into(),
                    n: "0".into(),
                    kind: ElementKindSpec::Resistor(1.0),
                },
                ElementSpec {
                    name: "R".into(),
                    p: "a".into(),
                    n: "0".into(),
                    kind: ElementKindSpec::Resistor(2.0),
                },
            ],
        };
        assert!(matches!(dup.build(), Err(ServeError::Invalid(_))));
    }

    #[test]
    fn prepare_rejects_dangling_references() {
        let mut job = JobSpec::demo_rc(2, 0);
        job.binds[0].element = "Rnope".into();
        assert!(matches!(job.prepare(), Err(ServeError::Invalid(_))));
        let mut job = JobSpec::demo_rc(2, 0);
        job.metrics[0].node = "nowhere".into();
        assert!(matches!(job.prepare(), Err(ServeError::Invalid(_))));
        let mut job = JobSpec::demo_rc(2, 0);
        job.binds[0].param = "ghost".into();
        let spec = job.sweep.to_spec().unwrap();
        let err = job.prepare().unwrap().run(&spec, 1, RunOpts::default());
        assert!(matches!(err, Err(ServeError::Invalid(_))));
    }

    #[test]
    fn direct_run_is_deterministic_across_workers() {
        let job = JobSpec::demo_rc(6, 0xAB);
        let one = job.direct_run(1).unwrap();
        let four = job.direct_run(4).unwrap();
        assert_eq!(one.fingerprint(), four.fingerprint());
        assert_eq!(one.scenarios.len(), 6);
        // The probes measured something real.
        assert!(one.scenarios.iter().all(|s| s.metrics[0].is_finite()));
        // Max probe dominates the last value.
        for s in &one.scenarios {
            assert!(s.metrics[1] >= s.metrics[0]);
        }
    }
}
