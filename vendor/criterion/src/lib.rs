//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, dependency-free benchmark harness with criterion's API
//! shape: [`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! benchmark groups with `sample_size`/`throughput`, [`Bencher::iter`]
//! and [`black_box`]. It measures wall-clock time (median of the sample
//! runs, each timing one closure call) and prints one line per benchmark:
//!
//! ```text
//! group/name            median 12.345 µs/iter  (11 samples)  850.1 Kelem/s
//! ```
//!
//! There is no statistical analysis, plotting, or baseline comparison —
//! the goal is that `cargo bench` builds, runs, and reports usable
//! numbers in this sealed environment.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
const DEFAULT_SAMPLES: usize = 11;

/// Wall-clock budget a single benchmark tries not to exceed.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier (`name/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates `name/param`.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Conversion for the `bench_function` name argument: accepts both
/// strings and [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl<S: Into<String>> IntoBenchmarkId for S {
    fn into_id(self) -> String {
        self.into()
    }
}

/// Times closure executions for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations, one per sample.
    timings: Vec<Duration>,
}

impl Bencher {
    /// Calls `routine` repeatedly, timing each call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // One warm-up call, untimed.
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }

    /// Criterion's batched iteration: `setup` output feeds `routine`;
    /// only `routine` is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        let budget_start = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
            if budget_start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Batch sizing hint (ignored; present for API compatibility).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn report(label: &str, timings: &[Duration], throughput: Option<Throughput>) {
    if timings.is_empty() {
        println!("{label:<44} no samples collected");
        return;
    }
    let mut sorted: Vec<Duration> = timings.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let rate = throughput.map(|tp| {
        let secs = median.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Elements(n) => format_rate(n as f64 / secs, "elem/s"),
            Throughput::Bytes(n) => format_rate(n as f64 / secs, "B/s"),
        }
    });
    println!(
        "{label:<44} median {:>12}/iter  ({} samples){}",
        format_duration(median),
        sorted.len(),
        rate.map(|r| format!("  {r}")).unwrap_or_default()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.3} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn format_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.1} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.1} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// The benchmark manager handed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = id.into_id();
        run_one(&label, self.sample_size, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: std::marker::PhantomData,
        }
    }
}

fn run_one(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        samples,
        timings: Vec::with_capacity(samples),
    };
    f(&mut b);
    report(label, &b.timings, throughput);
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: std::marker::PhantomData<&'c mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates subsequent benchmarks with a throughput for rate
    /// reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Overrides the measurement budget (accepted, unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_id());
        run_one(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; present for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function that runs each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        // warm-up + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn group_settings_apply() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2).throughput(Throughput::Elements(100));
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &p| {
            b.iter(|| {
                runs += 1;
                black_box(p)
            })
        });
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn formatting_helpers() {
        assert!(format_duration(Duration::from_nanos(500)).contains("ns"));
        assert!(format_duration(Duration::from_micros(50)).contains("µs"));
        assert!(format_duration(Duration::from_millis(50)).contains("ms"));
        assert!(format_rate(2.5e6, "elem/s").contains("Melem/s"));
    }
}
