//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker, covering the API subset this workspace uses.
//!
//! [`model`] runs a closure repeatedly, exploring thread interleavings
//! by depth-first search over scheduling decisions. Execution is fully
//! serialized: exactly one logical thread runs at a time, and every
//! access to a [`sync::atomic`] type (and every [`thread::yield_now`])
//! is a *yield point* where the scheduler may switch threads. The
//! search is exhaustive up to a preemption bound (default 3, override
//! with `LOOM_MAX_PREEMPTIONS`): every schedule in which no thread is
//! involuntarily descheduled more than the bounded number of times is
//! executed exactly once. Preemption bounding is the same pruning
//! strategy real loom uses, and it is known to find the vast majority
//! of interleaving bugs at small bounds.
//!
//! Differences from real loom, by design of a minimal stand-in:
//!
//! * memory ordering is sequentially consistent (orderings are
//!   accepted and ignored) — weak-memory reorderings are not explored;
//! * only `thread`, `sync::{Arc, Mutex, Condvar}` and
//!   `sync::atomic::{AtomicU64, AtomicUsize, AtomicBool, Ordering}`
//!   are provided;
//! * [`sync::Mutex`] and [`sync::Condvar`] park the *logical* thread in
//!   the model scheduler (a dedicated `Blocked` state); a schedule in
//!   which parked threads can never be woken is reported as a deadlock,
//!   which is how lost-wakeup bugs surface;
//! * spawned threads must be joined inside the model closure.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::sync::{Arc as StdArc, Condvar, Mutex, MutexGuard};

/// Maximum model iterations before the search gives up. A genuine
/// runaway (unbounded schedules) is a bug in the model under test; a
/// clean exhaustive search of a small test finishes far below this.
const MAX_ITERATIONS: usize = 1_000_000;

/// Maximum yield points in a single run. An unbounded spin loop (e.g. a
/// retry loop whose partner thread is blocked in `join`) would otherwise
/// hang the search forever on one schedule; model bodies must bound
/// their loops.
const MAX_STEPS_PER_RUN: usize = 100_000;

fn max_preemptions() -> usize {
    std::env::var("LOOM_MAX_PREEMPTIONS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// One recorded scheduling decision: which thread was chosen among the
/// runnable set, and how to enumerate the remaining alternatives.
#[derive(Debug, Clone)]
struct PathEntry {
    /// Runnable threads at this point, non-preempting choice first.
    options: Vec<usize>,
    /// Index into `options` of the branch taken this iteration.
    chosen: usize,
    /// The thread that was running when the decision was made (`None`
    /// at a thread exit — switching then is not a preemption).
    prev: Option<usize>,
    /// Preemptions accumulated strictly before this decision.
    preemptions_before: usize,
}

impl PathEntry {
    fn is_preemption(&self, idx: usize) -> bool {
        matches!(self.prev, Some(p) if self.options[idx] != p)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    /// Waiting for another thread to finish.
    Joining(usize),
    /// Parked on a modeled [`sync::Mutex`] or [`sync::Condvar`]; only
    /// an explicit [`Scheduler::unblock`] makes it runnable again.
    Blocked,
    Finished,
}

struct SchedState {
    threads: Vec<ThreadState>,
    /// The one thread currently allowed to run.
    current: usize,
    /// Decision sequence: replayed prefix + extensions made this run.
    path: Vec<PathEntry>,
    /// Next decision index.
    depth: usize,
    /// Length of `path` that is being replayed from the previous run.
    replay_len: usize,
    preemptions: usize,
    /// Yield points taken in this run, for livelock detection.
    steps: usize,
}

struct Scheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    bound: usize,
}

impl Scheduler {
    fn lock(&self) -> MutexGuard<'_, SchedState> {
        // A panicking interleaving poisons the lock; the panic that
        // matters is the original one, so ignore the poison.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Picks the next thread to run (replaying the recorded path or
    /// extending it), wakes it, and returns it. Panics on deadlock.
    fn pick_next(&self, st: &mut SchedState, prev: Option<usize>) -> usize {
        let runnable: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t] == ThreadState::Runnable)
            .collect();
        assert!(
            !runnable.is_empty(),
            "deadlock: no runnable thread (states: {:?})",
            st.threads
        );
        if runnable.len() == 1 {
            // A forced move is not a decision; it is never recorded, so
            // replay and extension agree on the path contents.
            return runnable[0];
        }
        // Non-preempting continuation first, then by thread id.
        let mut options = runnable;
        if let Some(p) = prev {
            if let Some(pos) = options.iter().position(|&t| t == p) {
                options.remove(pos);
                options.insert(0, p);
            }
        }
        let entry_idx = st.depth;
        if entry_idx < st.path.len() {
            // Replay.
            let entry = &st.path[entry_idx];
            assert_eq!(
                entry.options, options,
                "nondeterministic model: runnable set diverged on replay"
            );
            let choice = entry.options[entry.chosen];
            let preempt = entry.is_preemption(entry.chosen);
            st.depth += 1;
            if preempt {
                st.preemptions += 1;
            }
            choice
        } else {
            let entry = PathEntry {
                options,
                chosen: 0,
                prev,
                preemptions_before: st.preemptions,
            };
            let choice = entry.options[0];
            // options[0] is the non-preempting continuation when one
            // exists, so `chosen == 0` never preempts.
            st.path.push(entry);
            st.depth += 1;
            choice
        }
    }

    /// Yield point: offer the scheduler a chance to switch away from
    /// thread `me`, then block until `me` is scheduled again.
    fn yield_point(&self, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, me);
        st.steps += 1;
        assert!(
            st.steps <= MAX_STEPS_PER_RUN,
            "livelock: {MAX_STEPS_PER_RUN} yield points in one schedule — \
             bound the loops inside the model body"
        );
        let next = self.pick_next(&mut st, Some(me));
        if next != me {
            st.current = next;
            self.cv.notify_all();
            while st.current != me {
                st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    /// Blocks until this thread becomes the scheduled one (used by a
    /// freshly spawned thread before its first instruction).
    fn wait_scheduled(&self, me: usize) {
        let mut st = self.lock();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Marks `me` finished, unblocks joiners, and hands the CPU to the
    /// next runnable thread (if any remain).
    fn finish(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me] = ThreadState::Finished;
        for t in 0..st.threads.len() {
            if st.threads[t] == ThreadState::Joining(me) {
                st.threads[t] = ThreadState::Runnable;
            }
        }
        if st.threads.contains(&ThreadState::Runnable) {
            let next = self.pick_next(&mut st, None);
            st.current = next;
            self.cv.notify_all();
        } else {
            // All threads done (or deadlocked — pick_next would have
            // caught a mix of Joining with no Runnable).
            let all_done = st.threads.iter().all(|&s| s == ThreadState::Finished);
            assert!(
                all_done,
                "deadlock: threads still parked (join, mutex or condvar): {:?}",
                st.threads
            );
            self.cv.notify_all();
        }
    }

    /// Parks thread `me` until some other thread calls
    /// [`Scheduler::unblock`] on it (mutex release, condvar notify).
    /// Panics on deadlock if nothing else can run.
    fn block_current(&self, me: usize) {
        let mut st = self.lock();
        debug_assert_eq!(st.current, me);
        st.threads[me] = ThreadState::Blocked;
        let next = self.pick_next(&mut st, None);
        st.current = next;
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        debug_assert_eq!(st.threads[me], ThreadState::Runnable);
    }

    /// Marks the given blocked threads runnable again. Does not switch:
    /// the caller keeps the CPU until its own next yield point, and the
    /// woken threads re-contend when the scheduler picks them.
    fn unblock(&self, tids: &[usize]) {
        if tids.is_empty() {
            return;
        }
        let mut st = self.lock();
        for &t in tids {
            debug_assert_eq!(st.threads[t], ThreadState::Blocked);
            st.threads[t] = ThreadState::Runnable;
        }
    }

    /// Blocks thread `me` until `target` finishes.
    fn join_wait(&self, me: usize, target: usize) {
        let mut st = self.lock();
        if st.threads[target] == ThreadState::Finished {
            return;
        }
        st.threads[me] = ThreadState::Joining(target);
        let next = self.pick_next(&mut st, None);
        st.current = next;
        self.cv.notify_all();
        while st.current != me {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        debug_assert_eq!(st.threads[target], ThreadState::Finished);
    }

    /// Advances the recorded path to the next unexplored branch.
    /// Returns `false` when the search space is exhausted.
    fn advance(&self) -> bool {
        let mut st = self.lock();
        while let Some(mut entry) = st.path.pop() {
            let mut next = entry.chosen + 1;
            while next < entry.options.len() {
                let extra = usize::from(entry.is_preemption(next));
                if entry.preemptions_before + extra <= self.bound {
                    entry.chosen = next;
                    st.path.push(entry);
                    return true;
                }
                next += 1;
            }
        }
        false
    }

    fn reset_for_run(&self, n_threads_hint: usize) {
        let mut st = self.lock();
        st.threads.clear();
        st.threads.reserve(n_threads_hint);
        st.threads.push(ThreadState::Runnable); // thread 0 = model body
        st.current = 0;
        st.replay_len = st.path.len();
        st.depth = 0;
        st.preemptions = 0;
        st.steps = 0;
    }
}

thread_local! {
    /// (scheduler, my thread id) for the logical thread running here.
    static CONTEXT: RefCell<Option<(StdArc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

fn context() -> Option<(StdArc<Scheduler>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

fn yield_if_modeled() {
    if let Some((sched, me)) = context() {
        sched.yield_point(me);
    }
}

/// Explores the interleavings of `f`.
///
/// Runs `f` once per distinct schedule (up to the preemption bound),
/// replaying a recorded decision prefix and branching depth-first. Any
/// panic inside `f` (assertion failure, overflow, …) surfaces on the
/// caller with the iteration number, which identifies the failing
/// schedule.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let sched = StdArc::new(Scheduler {
        state: Mutex::new(SchedState {
            threads: Vec::new(),
            current: 0,
            path: Vec::new(),
            depth: 0,
            replay_len: 0,
            preemptions: 0,
            steps: 0,
        }),
        cv: Condvar::new(),
        bound: max_preemptions(),
    });
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        assert!(
            iterations <= MAX_ITERATIONS,
            "loom model did not converge after {MAX_ITERATIONS} iterations"
        );
        sched.reset_for_run(4);
        CONTEXT.with(|c| *c.borrow_mut() = Some((sched.clone(), 0)));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        CONTEXT.with(|c| *c.borrow_mut() = None);
        match result {
            Ok(()) => sched.finish(0),
            Err(payload) => {
                eprintln!("loom: model panicked on iteration {iterations}");
                std::panic::resume_unwind(payload);
            }
        }
        if !sched.advance() {
            break;
        }
    }
}

/// Model-aware threads.
pub mod thread {
    use super::{context, ThreadState};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
        tid: usize,
    }

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish and returns its result.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> std::thread::Result<T> {
            if let Some((sched, me)) = context() {
                sched.join_wait(me, self.tid);
            }
            self.inner.join()
        }
    }

    /// Spawns a model thread. Must be called inside [`super::model`];
    /// outside a model it degrades to a plain [`std::thread::spawn`].
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match context() {
            None => JoinHandle {
                inner: std::thread::spawn(f),
                tid: usize::MAX,
            },
            Some((sched, _me)) => {
                let tid = {
                    let mut st = sched.lock();
                    st.threads.push(ThreadState::Runnable);
                    st.threads.len() - 1
                };
                let sched2 = sched.clone();
                let inner = std::thread::spawn(move || {
                    super::CONTEXT.with(|c| *c.borrow_mut() = Some((sched2.clone(), tid)));
                    sched2.wait_scheduled(tid);
                    // On panic the scheduler must still be told this
                    // thread is done, or the joiner deadlocks instead
                    // of seeing the panic.
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                    super::CONTEXT.with(|c| *c.borrow_mut() = None);
                    sched2.finish(tid);
                    match out {
                        Ok(v) => v,
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                });
                JoinHandle { inner, tid }
            }
        }
    }

    /// A scheduling point with no memory effect.
    pub fn yield_now() {
        super::yield_if_modeled();
        if context().is_none() {
            std::thread::yield_now();
        }
    }
}

/// Model-aware synchronization primitives.
pub mod sync {
    pub use std::sync::Arc;
    pub use std::sync::LockResult;

    use super::context;
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Modeled blocking state of a [`Mutex`]: whether a logical thread
    /// holds it, and which logical threads are parked waiting for it.
    #[derive(Debug, Default)]
    struct MutexState {
        held: bool,
        waiters: Vec<usize>,
    }

    /// A mutual-exclusion lock whose acquire is a scheduling point and
    /// whose contention parks the logical thread in the model scheduler.
    ///
    /// Inside [`super::model`], blocking is simulated: a contended
    /// `lock` parks the logical thread until the holder's guard drops,
    /// and the explorer branches over who wins the re-acquire. Outside
    /// a model it degrades to a plain [`std::sync::Mutex`]. Data is
    /// always protected by the inner std mutex; in modeled mode that
    /// inner lock is uncontended by construction (exactly one logical
    /// thread runs between acquire and release).
    pub struct Mutex<T> {
        data: std::sync::Mutex<T>,
        state: std::sync::Mutex<MutexState>,
    }

    impl<T> Mutex<T> {
        /// Creates a new unlocked mutex.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                data: std::sync::Mutex::new(value),
                state: std::sync::Mutex::new(MutexState::default()),
            }
        }

        /// Acquires the mutex, parking the logical thread while another
        /// holds it. Never returns `Err`: the stub does not model
        /// poisoning (a panicking schedule surfaces the panic itself).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match context() {
                None => {
                    let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        mutex: self,
                        inner: Some(inner),
                        modeled: false,
                    })
                }
                Some((sched, me)) => {
                    // The acquire is a visible synchronization action.
                    sched.yield_point(me);
                    loop {
                        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                        if !st.held {
                            st.held = true;
                            break;
                        }
                        st.waiters.push(me);
                        drop(st);
                        sched.block_current(me);
                        // Woken by a release; re-contend (another woken
                        // waiter may have taken the lock first).
                    }
                    let inner = self.data.lock().unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        mutex: self,
                        inner: Some(inner),
                        modeled: true,
                    })
                }
            }
        }
    }

    impl<T> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Mutex(..)")
        }
    }

    /// RAII guard for [`Mutex`]; releasing it wakes parked acquirers.
    pub struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        /// `Some` until the guard is dropped or handed to a condvar.
        inner: Option<std::sync::MutexGuard<'a, T>>,
        modeled: bool,
    }

    impl<T> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard already released")
        }
    }

    impl<T> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard already released")
        }
    }

    impl<T> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            // Release the real lock first so a woken waiter scheduled
            // later can take it without contention.
            self.inner.take();
            if self.modeled {
                let mut st = self.mutex.state.lock().unwrap_or_else(|e| e.into_inner());
                st.held = false;
                let woken = std::mem::take(&mut st.waiters);
                drop(st);
                if let Some((sched, _me)) = context() {
                    sched.unblock(&woken);
                }
            }
        }
    }

    /// A condition variable integrated with the model scheduler.
    ///
    /// In modeled mode the waiter is registered *before* the mutex is
    /// released (the two happen with no intervening scheduling point),
    /// so the classic lost-wakeup window does not exist in the model —
    /// exactly the guarantee a real condvar gives code that checks its
    /// predicate under the mutex. Outside a model it degrades to a
    /// plain [`std::sync::Condvar`].
    pub struct Condvar {
        std: std::sync::Condvar,
        waiters: std::sync::Mutex<Vec<usize>>,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Condvar {
            Condvar {
                std: std::sync::Condvar::new(),
                waiters: std::sync::Mutex::new(Vec::new()),
            }
        }

        /// Atomically releases the guard and parks until notified, then
        /// re-acquires the mutex. Never returns `Err` (no poisoning).
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match context() {
                None => {
                    let mutex = guard.mutex;
                    let inner = guard.inner.take().expect("guard already released");
                    // Nothing left for the guard's Drop to release.
                    std::mem::forget(guard);
                    let inner = self.std.wait(inner).unwrap_or_else(|e| e.into_inner());
                    Ok(MutexGuard {
                        mutex,
                        inner: Some(inner),
                        modeled: false,
                    })
                }
                Some((sched, me)) => {
                    let mutex = guard.mutex;
                    // Register, THEN release: serialized execution means
                    // no notify can slip between the two.
                    self.waiters
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(me);
                    drop(guard);
                    sched.block_current(me);
                    mutex.lock()
                }
            }
        }

        /// Wakes one parked waiter (FIFO in the model).
        pub fn notify_one(&self) {
            if let Some((sched, _me)) = context() {
                let mut ws = self.waiters.lock().unwrap_or_else(|e| e.into_inner());
                if !ws.is_empty() {
                    let t = ws.remove(0);
                    drop(ws);
                    sched.unblock(&[t]);
                }
            }
            self.std.notify_one();
        }

        /// Wakes every parked waiter.
        pub fn notify_all(&self) {
            if let Some((sched, _me)) = context() {
                let woken =
                    std::mem::take(&mut *self.waiters.lock().unwrap_or_else(|e| e.into_inner()));
                sched.unblock(&woken);
            }
            self.std.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Condvar {
            Condvar::new()
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Condvar")
        }
    }

    /// Model-aware atomics: every access is a scheduling point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// An atomic `usize` whose every access is a scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            /// Creates a new atomic.
            pub fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }
            /// Loads the value (scheduling point).
            pub fn load(&self, order: Ordering) -> usize {
                super::super::yield_if_modeled();
                self.0.load(order)
            }
            /// Stores a value (scheduling point).
            pub fn store(&self, v: usize, order: Ordering) {
                super::super::yield_if_modeled();
                self.0.store(v, order);
            }
            /// Adds, returning the previous value (scheduling point).
            pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
                super::super::yield_if_modeled();
                self.0.fetch_add(v, order)
            }
        }

        /// An atomic `u64` whose every access is a scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicU64(std::sync::atomic::AtomicU64);

        impl AtomicU64 {
            /// Creates a new atomic.
            pub fn new(v: u64) -> Self {
                AtomicU64(std::sync::atomic::AtomicU64::new(v))
            }
            /// Loads the value (scheduling point).
            pub fn load(&self, order: Ordering) -> u64 {
                super::super::yield_if_modeled();
                self.0.load(order)
            }
            /// Stores a value (scheduling point).
            pub fn store(&self, v: u64, order: Ordering) {
                super::super::yield_if_modeled();
                self.0.store(v, order);
            }
        }

        /// An atomic `bool` whose every access is a scheduling point.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic.
            pub fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }
            /// Loads the value (scheduling point).
            pub fn load(&self, order: Ordering) -> bool {
                super::super::yield_if_modeled();
                self.0.load(order)
            }
            /// Stores a value (scheduling point).
            pub fn store(&self, v: bool, order: Ordering) {
                super::super::yield_if_modeled();
                self.0.store(v, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    #[test]
    fn explores_more_than_one_schedule() {
        let iterations = Arc::new(StdAtomicUsize::new(0));
        let it2 = iterations.clone();
        super::model(move || {
            it2.fetch_add(1, StdOrdering::Relaxed);
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = x.clone();
            let h = super::thread::spawn(move || {
                x2.store(1, Ordering::SeqCst);
            });
            let _seen = x.load(Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(x.load(Ordering::SeqCst), 1);
        });
        // The load can observe 0 or 1 depending on the schedule, so at
        // least two interleavings must have been run.
        assert!(iterations.load(StdOrdering::Relaxed) >= 2);
    }

    #[test]
    fn finds_lost_update() {
        // Two unsynchronized read-modify-write threads: some schedule
        // must lose an update. Verify the explorer reaches it.
        let lost = Arc::new(StdAtomicUsize::new(0));
        let lost2 = lost.clone();
        super::model(move || {
            let x = Arc::new(AtomicUsize::new(0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let x2 = x.clone();
                handles.push(super::thread::spawn(move || {
                    let v = x2.load(Ordering::SeqCst);
                    x2.store(v + 1, Ordering::SeqCst);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            if x.load(Ordering::SeqCst) != 2 {
                lost2.fetch_add(1, StdOrdering::Relaxed);
            }
        });
        assert!(lost.load(StdOrdering::Relaxed) > 0, "never saw the race");
    }

    #[test]
    fn mutex_prevents_lost_updates() {
        // The same read-modify-write race as `finds_lost_update`, but
        // under the modeled Mutex: no schedule may lose an update.
        super::model(|| {
            let x = Arc::new(super::sync::Mutex::new(0usize));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let x2 = x.clone();
                handles.push(super::thread::spawn(move || {
                    let mut g = x2.lock().unwrap();
                    *g += 1;
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*x.lock().unwrap(), 2, "update lost under mutex");
        });
    }

    #[test]
    fn condvar_handoff_is_never_lost() {
        // Classic producer/consumer handoff: the consumer parks until
        // the flag is set. Registering the waiter before releasing the
        // mutex means no schedule can lose the wakeup — a regression
        // would surface as the model's deadlock panic.
        super::model(|| {
            let pair = Arc::new((super::sync::Mutex::new(false), super::sync::Condvar::new()));
            let p2 = pair.clone();
            let producer = super::thread::spawn(move || {
                let (m, cv) = &*p2;
                *m.lock().unwrap() = true;
                cv.notify_all();
            });
            let (m, cv) = &*pair;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            producer.join().unwrap();
        });
    }

    #[test]
    fn single_thread_runs_once() {
        let iterations = Arc::new(StdAtomicUsize::new(0));
        let it2 = iterations.clone();
        super::model(move || {
            it2.fetch_add(1, StdOrdering::Relaxed);
            let x = AtomicUsize::new(0);
            x.store(7, Ordering::SeqCst);
            assert_eq!(x.load(Ordering::SeqCst), 7);
        });
        assert_eq!(iterations.load(StdOrdering::Relaxed), 1);
    }
}
