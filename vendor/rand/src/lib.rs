//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, dependency-free implementation of the `rand 0.8` API
//! surface it actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`] and [`Rng::gen_range`]. The generator is xoshiro256**
//! seeded through SplitMix64 — high-quality, deterministic, and fast.
//! It does **not** promise stream compatibility with upstream `rand`;
//! all in-repo uses are seeded and only need determinism within this
//! workspace.

#![forbid(unsafe_code)]

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a value can be drawn from (subset of `rand::distributions::uniform`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2⁶⁴, negligible for test-sized spans.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand`'s
    /// ChaCha-based `StdRng`; same API, different — but still
    /// high-quality — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's current stream position: its full internal
        /// state, as expanded from the SplitMix64-seeded construction
        /// and advanced by every draw since. Feed it back through
        /// [`StdRng::from_state`] to resume the identical stream — the
        /// checkpoint/restore hook for deterministic forked runs.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator at a stream position previously
        /// captured with [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        fn next(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next_sm = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// Convenience alias namespace mirroring `rand::prelude`.
pub mod prelude {
    pub use super::{rngs::StdRng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
            let n = rng.gen_range(3u64..9);
            assert!((3..9).contains(&n));
            let i = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn state_round_trip_resumes_identical_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }
}
