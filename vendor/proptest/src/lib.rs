//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, dependency-free property-testing harness that supports the
//! subset of the proptest API used in-repo:
//!
//! * the [`proptest!`] macro over `#[test] fn name(arg in strategy, …)`
//!   items;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies (`-10.0f64..10.0`, `1u64..8`), tuple strategies,
//!   [`collection::vec`] with a fixed length or a length range, and
//!   [`Strategy::prop_filter`] / [`Strategy::prop_map`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! its generated inputs via `Debug` and panics. Case generation is
//! deterministic per test (seeded by the test's name), so failures
//! reproduce across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: std::fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Retains only generated values satisfying `pred` (regenerates
        /// otherwise; panics after 1024 consecutive rejections).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }

        /// Maps generated values through `f`.
        fn prop_map<O: std::fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter '{}' rejected 1024 candidates in a row",
                self.whence
            );
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A constant strategy (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + (rng.next_u64() as usize) % (hi - lo + 1)
        }
    }

    /// Strategy generating `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test deterministic RNG and case outcome plumbing.

    /// Deterministic xoshiro256** generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name),
        /// so each test has its own reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut sm = h;
            let mut next_sm = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next_sm(), next_sm(), next_sm(), next_sm()],
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Outcome of one generated case's body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: the case does not count, draw another.
        Reject(String),
        /// `prop_assert!`-style failure: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure outcome.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection outcome.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Number of accepted cases each property runs.
    pub const CASES: u32 = 64;

    /// Cap on consecutive `prop_assume!` rejections before the property
    /// errors out as vacuous.
    pub const MAX_REJECTS: u32 = 4096;
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `#[test] fn name(arg in strategy, …)`
/// item runs its body over [`test_runner::CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < $crate::test_runner::CASES {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let case = {
                        $(let $arg = $arg.clone();)+
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        }
                    };
                    match case() {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < $crate::test_runner::MAX_REJECTS,
                                "property {} rejected {} candidate cases (vacuous prop_assume?)",
                                stringify!($name),
                                rejected,
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property {} failed after {} cases: {}\n  inputs: {:#?}",
                                stringify!($name),
                                accepted,
                                msg,
                                ($(&$arg,)+),
                            );
                        }
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body (fails the case, reporting
/// its generated inputs, instead of panicking mid-closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: {:?}, right: {:?})", format!($($fmt)+), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case when `cond` is false (does not count
/// towards the accepted-case quota).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn finite_f64(range: std::ops::Range<f64>) -> impl Strategy<Value = f64> {
        range.prop_filter("finite", |v| v.is_finite())
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -10.0f64..10.0, n in 1u64..8) {
            prop_assert!((-10.0..10.0).contains(&x));
            prop_assert!((1..8).contains(&n));
        }

        #[test]
        fn vec_respects_length_range(
            v in collection::vec(finite_f64(-5.0..5.0), 2..6),
            w in collection::vec((1u64..4, 1u64..4), 3),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            for &(a, b) in &w {
                prop_assert!(a < 4 && b < 4, "tuple element out of range");
            }
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..100) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("same");
        let mut b = crate::test_runner::TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
