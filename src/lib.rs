//! # systemc-ams — a Rust reproduction of the SystemC-AMS framework
//!
//! This workspace reproduces the system specified by *"SystemC-AMS
//! Requirements, Design Objectives and Rationale"* (Vachoux, Grimm,
//! Einwich — DATE 2003): analog/mixed-signal modeling and simulation
//! extensions layered over a SystemC-style discrete-event kernel,
//! spanning all three development phases of the paper's roadmap. See
//! `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! experiment index.
//!
//! The facade re-exports every member crate under a stable name:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`math`] | `ams-math` | dense linear algebra, complex numbers, ODE/DAE integrators, Newton, FFT |
//! | [`kernel`] | `ams-kernel` | discrete-event kernel: time, signals, delta cycles, processes, clocks |
//! | [`sdf`] | `ams-sdf` | synchronous dataflow: balance equations, static schedules, execution |
//! | [`lti`] | `ams-lti` | transfer functions, zero-pole, state space, discretization, Bode |
//! | [`net`] | `ams-net` | conservative-law MNA networks: DC/transient/AC/noise, multi-domain |
//! | [`lint`] | `ams-lint` | pre-elaboration static analysis: balance/cycle/topology diagnostics |
//! | [`monitor`] | `ams-monitor` | runtime verification: streaming temporal assertions, verdicts, codes |
//! | [`core`] | `ams-core` | TDF MoC, DE↔CT synchronization layer, solver plug-ins, AMS simulator |
//! | [`blocks`] | `ams-blocks` | mixed-signal block library (sources → Σ∆ → RF → power → control) |
//! | [`wave`] | `ams-wave` | VCD/CSV tracing, spectral analysis (SNR/SINAD/THD/ENOB) |
//! | [`exec`] | `ams-exec` | parallel execution engine: partitioner, worker pool, SPSC rings, stats |
//! | [`sweep`] | `ams-sweep` | batched multi-scenario runs: grids, corners, Monte Carlo, reports |
//! | [`scope`] | `ams-scope` | observability: span tracer, metrics registry, Chrome trace export |
//! | [`serve`] | `ams-serve` | simulation service: TCP/JSON daemon, warm topology cache, tenant quotas |
//!
//! # Quickstart
//!
//! A heterogeneous model in a dozen lines — a continuous RC filter inside
//! a timed-dataflow cluster, stimulated from and observed by the
//! discrete-event world:
//!
//! ```
//! use systemc_ams::core::{AmsSimulator, CtModule, LtiCtSolver, TdfGraph};
//! use systemc_ams::kernel::SimTime;
//! use systemc_ams::lti::{Discretization, TransferFunction};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sim = AmsSimulator::new();
//! let stimulus = sim.kernel_mut().signal("stimulus", 1.0f64);
//! let filtered = sim.kernel_mut().signal("filtered", 0.0f64);
//!
//! let mut graph = TdfGraph::new("rc");
//! let u = graph.from_de("u", stimulus);
//! let y = graph.signal("y");
//! let tf = TransferFunction::low_pass1(1000.0)?; // τ = 1 ms
//! let solver = LtiCtSolver::from_transfer_function(&tf, Discretization::Zoh)?;
//! graph.add_module(
//!     "rc",
//!     CtModule::new("rc", Box::new(solver), vec![u.reader()], vec![y.writer()],
//!                   Some(SimTime::from_us(10))),
//! );
//! graph.to_de("y", y, filtered);
//! sim.add_cluster(graph)?;
//! sim.run_until(SimTime::from_ms(10))?;
//! assert!((sim.kernel().peek(filtered) - 1.0).abs() < 1e-3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ams_blocks as blocks;
pub use ams_core as core;
pub use ams_exec as exec;
pub use ams_kernel as kernel;
pub use ams_lint as lint;
pub use ams_lti as lti;
pub use ams_math as math;
pub use ams_monitor as monitor;
pub use ams_net as net;
pub use ams_scope as scope;
pub use ams_sdf as sdf;
pub use ams_serve as serve;
pub use ams_sweep as sweep;
pub use ams_wave as wave;
